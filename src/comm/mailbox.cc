#include "comm/mailbox.hh"

#include <algorithm>
#include <vector>

#include "support/error.hh"

namespace wavepipe {

void Mailbox::throw_poisoned() const {
  throw CommError("recv aborted: machine poisoned (" + poison_reason_ + ")");
}

Mailbox::ParallelState::ParallelState(int nranks) {
  channels.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    channels.push_back(std::make_unique<SpscQueue<Message>>());
}

void Mailbox::enter_parallel(int nranks) {
  internal_check(!blocker_ && !parallel_,
                 "mailbox already has an engine attached");
  parallel_ = std::make_unique<ParallelState>(nranks);
}

void Mailbox::exit_parallel() {
  if (!parallel_) return;
  // Quiescent by contract (rank threads joined), so this final drain moves
  // any message that was sent but never received into the ordinary queues —
  // pending() reports the same count every engine reports.
  drain_channels();
  parallel_.reset();
}

void Mailbox::absorb(Message m) {
  // Matching mirrors the deposit paths below: a waiting posted receive gets
  // the message directly, otherwise it queues.
  const auto it = posted_.find(key_of(m.src, m.tag));
  if (it != posted_.end() && !it->second.empty()) {
    PostedRecv* slot = it->second.front();
    it->second.pop_front();
    complete(*slot, std::move(m));
  } else {
    queues_[key_of(m.src, m.tag)].push_back(std::move(m));
    ++pending_;
  }
}

void Mailbox::drain_channels() {
  // Serialized consumer side only. Per-(src, tag) FIFO holds because each
  // channel is itself FIFO, only rank `src` pushes into channel[src], and
  // batches are absorbed in pop order.
  auto& scratch = parallel_->scratch;
  for (auto& ch : parallel_->channels) {
    for (;;) {
      scratch.clear();
      const std::size_t n = ch->pop_batch(scratch, kDrainBatch);
      if (n == 0) break;
      for (Message& m : scratch) absorb(std::move(m));
      // A short batch means the channel ran dry mid-claim; skip the extra
      // empty-probe round trip.
      if (n < kDrainBatch) break;
    }
  }
}

void Mailbox::poll() {
  if (parallel_) drain_channels();
}

std::optional<Message> Mailbox::pop_unlocked(int src, int tag) {
  const auto it = queues_.find(key_of(src, tag));
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Message out = std::move(it->second.front());
  it->second.pop_front();
  --pending_;
  return out;
}

bool Mailbox::probe_unlocked(int src, int tag) const {
  const auto it = queues_.find(key_of(src, tag));
  return it != queues_.end() && !it->second.empty();
}

void Mailbox::complete(PostedRecv& slot, Message m) {
  slot.msg = std::move(m);
  slot.completed.store(true, std::memory_order_release);
}

void Mailbox::post_recv_unlocked(PostedRecv& slot) {
  // Per key, at most one of {queued messages, waiting posted receives} is
  // nonempty: if a message is queued there is nothing posted ahead of us,
  // so claiming the oldest one preserves FIFO order.
  if (auto m = pop_unlocked(slot.src, slot.tag)) {
    complete(slot, std::move(*m));
    return;
  }
  posted_[key_of(slot.src, slot.tag)].push_back(&slot);
}

void Mailbox::cancel_recv_unlocked(PostedRecv& slot) {
  const auto it = posted_.find(key_of(slot.src, slot.tag));
  if (it == posted_.end()) return;
  auto& dq = it->second;
  dq.erase(std::remove(dq.begin(), dq.end(), &slot), dq.end());
}

std::string Mailbox::posted_summary_unlocked() const {
  std::vector<const PostedRecv*> slots;
  for (const auto& [key, dq] : posted_) {
    (void)key;
    for (const PostedRecv* s : dq) slots.push_back(s);
  }
  std::sort(slots.begin(), slots.end(),
            [](const PostedRecv* a, const PostedRecv* b) {
              if (a->src != b->src) return a->src < b->src;
              return a->tag < b->tag;
            });
  std::string out;
  for (const PostedRecv* s : slots) {
    if (!out.empty()) out += "; ";
    out += s->what;
    out += "(src=" + std::to_string(s->src) +
           ", tag=" + std::to_string(s->tag) + ")";
  }
  return out;
}

void Mailbox::deposit(Message m) {
  if (parallel_) {
    // Producer hot path: one lock-free push into this sender's private
    // channel plus an eventcount bump. No mutex, no map access — the owner
    // does all matching when it drains.
    auto& st = *parallel_;
    const auto src = static_cast<std::size_t>(m.src);
    internal_check(m.src >= 0 && src < st.channels.size(),
                   "parallel deposit from out-of-range source rank");
    st.channels[src]->push(std::move(m));
    st.parker.unpark();
    // Tasks backend: a pool worker parked machine-wide may be able to
    // promote the task this message feeds; gated to a fence + load when no
    // worker is idle.
    if (PoolSignal* ps = pool_signal_.load(std::memory_order_acquire))
      ps->notify();
    return;
  }
  if (blocker_) {
    absorb(std::move(m));
    blocker_->notify(*this);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    absorb(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::await(int src, int tag) {
  // Route through the posted-receive protocol so a blocking recv queues
  // FIFO behind any earlier irecv posted on the same (src, tag) key.
  PostedRecv slot;
  slot.src = src;
  slot.tag = tag;
  slot.what = "recv";
  post_recv(slot);
  try {
    await_completion(slot);
  } catch (...) {
    // An exception can unwind through a block point (the fiber engine's
    // low-stack check, an engine teardown) after the slot matched nothing.
    // The slot lives in this stack frame: leaving it registered would let
    // a later deposit complete into a dead frame and corrupt whatever
    // reuses the memory. (A message that *did* land in the slot stays
    // consumed — per-(src,tag) FIFO has already advanced past it.)
    if (!slot.done()) cancel_recv(slot);
    throw;
  }
  return std::move(slot.msg);
}

void Mailbox::post_recv(PostedRecv& slot) {
  if (parallel_) {
    // Drain first so the slot claims a message that already physically
    // arrived, exactly as a locked-mode deposit would have matched it.
    drain_channels();
    post_recv_unlocked(slot);
    return;
  }
  if (blocker_) {
    post_recv_unlocked(slot);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  post_recv_unlocked(slot);
}

void Mailbox::await_completion(PostedRecv& slot) {
  if (parallel_) {
    for (;;) {
      // Take the parker ticket BEFORE draining: any deposit after this
      // point bumps the epoch, so park(ticket) cannot sleep through it.
      const std::uint32_t ticket = parallel_->parker.prepare();
      drain_channels();
      // Completion wins over poison, same as the other engine modes.
      if (slot.done()) return;
      if (poisoned()) {
        cancel_recv_unlocked(slot);
        throw_poisoned();
      }
      parallel_->parker.park(ticket);
    }
  }
  if (blocker_) {
    for (;;) {
      // Completion wins over poison: a message already delivered into the
      // slot is valid even if the machine is tearing down (the threaded
      // path below makes the same choice, keeping engines equivalent).
      if (slot.done()) return;
      if (poisoned_) {
        cancel_recv_unlocked(slot);
        throw_poisoned();
      }
      blocker_->block(*this);
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return slot.done() || poisoned_; });
  if (slot.done()) return;
  cancel_recv_unlocked(slot);
  throw_poisoned();
}

void Mailbox::await_until(const std::function<bool()>& ready) {
  if (parallel_) {
    for (;;) {
      const std::uint32_t ticket = parallel_->parker.prepare();
      drain_channels();
      if (ready()) return;
      if (poisoned()) throw_poisoned();
      parallel_->parker.park(ticket);
    }
  }
  if (blocker_) {
    for (;;) {
      if (ready()) return;
      if (poisoned_) throw_poisoned();
      blocker_->block(*this);
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return ready() || poisoned_; });
  if (ready()) return;
  throw_poisoned();
}

void Mailbox::cancel_recv(PostedRecv& slot) {
  if (parallel_ || blocker_) {
    cancel_recv_unlocked(slot);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  cancel_recv_unlocked(slot);
}

std::optional<Message> Mailbox::try_match(int src, int tag) {
  if (parallel_) {
    if (poisoned()) throw_poisoned();
    drain_channels();
    return pop_unlocked(src, tag);
  }
  if (blocker_) {
    if (poisoned_) throw_poisoned();
    return pop_unlocked(src, tag);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) throw_poisoned();
  return pop_unlocked(src, tag);
}

bool Mailbox::probe(int src, int tag) {
  if (parallel_) {
    drain_channels();
    return probe_unlocked(src, tag);
  }
  if (blocker_) return probe_unlocked(src, tag);
  std::lock_guard<std::mutex> lock(mutex_);
  return probe_unlocked(src, tag);
}

void Mailbox::poison(const std::string& why) {
  if (parallel_) {
    // Any rank thread may poison concurrently. The CAS picks one winner to
    // write the reason; the release store of poisoned_ then publishes the
    // string to the owner's acquire load in poisoned(). Losers just wake
    // the owner (the winner wakes it again after its store, so the owner
    // can never park forever with the flag set).
    bool expected = false;
    if (poison_claim_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
      poison_reason_ = why;
      poisoned_.store(true, std::memory_order_release);
    }
    parallel_->parker.unpark();
    // Pool workers idle-parked machine-wide must also observe the teardown.
    if (PoolSignal* ps = pool_signal_.load(std::memory_order_acquire))
      ps->notify();
    return;
  }
  if (blocker_) {
    if (!poisoned_) {
      poison_claim_ = true;
      poison_reason_ = why;
      poisoned_ = true;
    }
    blocker_->notify(*this);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_) {
      poison_claim_ = true;
      poison_reason_ = why;
      poisoned_ = true;
    }
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  if (parallel_ || blocker_) return pending_;
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

std::string Mailbox::posted_summary() const {
  if (parallel_ || blocker_) return posted_summary_unlocked();
  std::lock_guard<std::mutex> lock(mutex_);
  return posted_summary_unlocked();
}

}  // namespace wavepipe
