#include "comm/mailbox.hh"

#include <limits>

#include "support/error.hh"

namespace wavepipe {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

void Mailbox::deposit(Message m) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

std::size_t Mailbox::find_locked(int src, int tag) const {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].src == src && queue_[i].tag == tag) return i;
  }
  return kNpos;
}

Message Mailbox::await(int src, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t at = kNpos;
  cv_.wait(lock, [&] {
    if (poisoned_) return true;
    at = find_locked(src, tag);
    return at != kNpos;
  });
  if (poisoned_)
    throw CommError("recv aborted: machine poisoned (" + poison_reason_ + ")");
  Message out = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  return out;
}

std::optional<Message> Mailbox::try_match(int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_)
    throw CommError("recv aborted: machine poisoned (" + poison_reason_ + ")");
  const std::size_t at = find_locked(src, tag);
  if (at == kNpos) return std::nullopt;
  Message out = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));
  return out;
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  return find_locked(src, tag) != kNpos;
}

void Mailbox::poison(const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_) {
      poisoned_ = true;
      poison_reason_ = why;
    }
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace wavepipe
