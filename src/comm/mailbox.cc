#include "comm/mailbox.hh"

#include "support/error.hh"

namespace wavepipe {

void Mailbox::throw_poisoned() const {
  throw CommError("recv aborted: machine poisoned (" + poison_reason_ + ")");
}

std::optional<Message> Mailbox::pop_unlocked(int src, int tag) {
  const auto it = queues_.find(key_of(src, tag));
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  Message out = std::move(it->second.front());
  it->second.pop_front();
  --pending_;
  return out;
}

bool Mailbox::probe_unlocked(int src, int tag) const {
  const auto it = queues_.find(key_of(src, tag));
  return it != queues_.end() && !it->second.empty();
}

void Mailbox::deposit(Message m) {
  if (blocker_) {
    queues_[key_of(m.src, m.tag)].push_back(std::move(m));
    ++pending_;
    blocker_->notify(*this);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[key_of(m.src, m.tag)].push_back(std::move(m));
    ++pending_;
  }
  cv_.notify_all();
}

Message Mailbox::await(int src, int tag) {
  if (blocker_) {
    for (;;) {
      if (poisoned_) throw_poisoned();
      if (auto m = pop_unlocked(src, tag)) return std::move(*m);
      blocker_->block(*this);
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  std::optional<Message> out;
  cv_.wait(lock, [&] {
    if (poisoned_) return true;
    out = pop_unlocked(src, tag);
    return out.has_value();
  });
  if (poisoned_ && !out) throw_poisoned();
  return std::move(*out);
}

std::optional<Message> Mailbox::try_match(int src, int tag) {
  if (blocker_) {
    if (poisoned_) throw_poisoned();
    return pop_unlocked(src, tag);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) throw_poisoned();
  return pop_unlocked(src, tag);
}

bool Mailbox::probe(int src, int tag) {
  if (blocker_) return probe_unlocked(src, tag);
  std::lock_guard<std::mutex> lock(mutex_);
  return probe_unlocked(src, tag);
}

void Mailbox::poison(const std::string& why) {
  if (blocker_) {
    if (!poisoned_) {
      poisoned_ = true;
      poison_reason_ = why;
    }
    blocker_->notify(*this);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_) {
      poisoned_ = true;
      poison_reason_ = why;
    }
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  if (blocker_) return pending_;
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace wavepipe
