// The Machine: a fixed-size set of ranks executing an SPMD function,
// exchanging messages through per-rank mailboxes under a shared CostModel.
// Three execution engines run the ranks (EngineConfig / WAVEPIPE_ENGINE):
// cooperative fibers on the calling thread (the default — no locks, no
// kernel scheduling, deterministic earliest-vtime-first switching), one OS
// thread per rank with mutex/condvar mailboxes, or the parallel engine —
// one core-pinned OS thread per rank over lock-free SPSC mailboxes, the
// configuration that turns pipelined-vs-naive into a *wall-clock* result
// on multicore hosts. All three produce identical results (vtimes, stats,
// phases, traces) for non-probe programs; see DESIGN.md §9 and §13.
//
// With CostModel{} (all costs zero) this is a plain in-process
// message-passing runtime whose wall-clock behaviour is whatever the host
// provides. With T3E-like alpha/beta it is the paper's machine model: every
// experiment that the authors ran on 1..16 T3E processors runs here with
// deterministic virtual times. This substitution is documented in
// DESIGN.md §2.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/communicator.hh"
#include "comm/cost_model.hh"
#include "comm/fiber.hh"
#include "comm/mailbox.hh"
#include "comm/trace.hh"

namespace wavepipe {

/// Result of one SPMD run.
struct RunResult {
  /// Completion virtual time per rank.
  std::vector<double> vtime;
  /// Max over ranks: the machine's virtual makespan (the quantity the
  /// paper's T_comp + T_comm formulas model).
  double vtime_max = 0.0;
  /// Host wall-clock seconds for the whole run. Under the parallel engine
  /// with a free CostModel this is the real-hardware measurement the paper
  /// cares about; under the virtual-time engines it mostly measures
  /// simulation overhead (see DESIGN.md §13 on vtime vs wall-clock).
  double wall_seconds = 0.0;
  /// Per-rank traffic counters and their sum.
  std::vector<CommStats> stats;
  CommStats total;
  /// Per-rank virtual-time decomposition (t_comp + t_comm + t_wait ==
  /// vtime[r]) and its sum over ranks. Always populated.
  std::vector<PhaseBreakdown> phases;
  PhaseBreakdown phases_total;
  /// Per-rank event traces; empty unless the machine's TraceConfig was
  /// enabled. Export with write_chrome_trace().
  std::vector<RankTrace> traces;
};

/// Chaos seam: when installed on a Machine, every outgoing message is routed
/// through the interceptor instead of being deposited directly into the
/// destination mailbox, and the fiber scheduler calls step() once per
/// scheduling iteration (plus once more when every unfinished rank is
/// blocked) so held messages can be delivered later. Fiber engine only:
/// Machine::run throws ConfigError when an interceptor is installed on a
/// threaded machine, because deposits from concurrent threads would race the
/// injector's state. See src/testing/chaos.hh for the FaultInjector built on
/// this seam.
class DeliveryInterceptor {
 public:
  virtual ~DeliveryInterceptor() = default;
  /// Called in place of Mailbox::deposit on the destination's mailbox; the
  /// interceptor delivers (now or later) via machine.mailbox(dst).deposit.
  virtual void deliver(int dst, Message m) = 0;
  /// `deadlock` is true when every unfinished rank is blocked; return true
  /// iff a message was delivered (the scheduler then re-polls instead of
  /// declaring deadlock). Also called once after the rank bodies finish so
  /// messages that were never received end up in the mailboxes, exactly as
  /// they would without an interceptor.
  virtual bool step(std::uint64_t step, bool deadlock) = 0;
};

/// An SPMD machine of `size` ranks.
class Machine {
 public:
  /// The default TraceConfig and EngineConfig come from the environment
  /// (WAVEPIPE_TRACE*, WAVEPIPE_ENGINE, WAVEPIPE_FIBER_STACK), so existing
  /// callers stay trace-free and pick up the default engine unless they opt
  /// in explicitly. An EngineConfig asking for fibers on a platform without
  /// the context API falls back to threads with a logged warning; fiber
  /// stacks are clamped up to EngineConfig::kMinStackBytes.
  explicit Machine(int size, CostModel costs = {},
                   TraceConfig trace = TraceConfig::from_env(),
                   EngineConfig engine = EngineConfig::from_env());
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int size() const { return size_; }
  const CostModel& costs() const { return costs_; }
  const TraceConfig& trace_config() const { return trace_; }

  /// The engine this machine actually uses (after any platform fallback).
  EngineKind engine() const { return engine_.kind; }
  const EngineConfig& engine_config() const { return engine_; }

  /// Runs `fn(comm)` once on every rank and joins. Exceptions thrown by any
  /// rank poison the mailboxes (unblocking peers) and the first one is
  /// rethrown here after all threads join. The machine is reusable: a clean
  /// run leaves every mailbox empty.
  RunResult run(const std::function<void(Communicator&)>& fn);

  /// Convenience: construct, run once, return the result.
  static RunResult run(int size, CostModel costs,
                       const std::function<void(Communicator&)>& fn);

  /// As above, with an explicit trace configuration.
  static RunResult run(int size, CostModel costs, TraceConfig trace,
                       const std::function<void(Communicator&)>& fn);

  /// As above, with an explicit engine selection.
  static RunResult run(int size, CostModel costs, EngineConfig engine,
                       const std::function<void(Communicator&)>& fn);

  Mailbox& mailbox(int rank);

  /// Routes an outgoing message to `dst`: through the delivery interceptor
  /// when one is installed, else straight into the destination mailbox.
  /// Communicator sends go through here.
  void deliver(int dst, Message m);

  /// Installs (or, with nullptr, removes) the chaos delivery interceptor.
  /// The pointer is borrowed; it must outlive every run() it observes.
  void set_delivery_interceptor(DeliveryInterceptor* interceptor) {
    interceptor_ = interceptor;
  }
  DeliveryInterceptor* delivery_interceptor() const { return interceptor_; }

  /// Sum of messages still queued in all mailboxes (0 after a clean run).
  std::size_t pending_messages() const;

  // ---- worker-pool seam (the sched/ tasks backend) ----

  /// The machine-wide eventcount tasks-backend workers park on when no
  /// task is runnable anywhere. run_parallel installs it into every mailbox
  /// (set_pool_signal) before rank threads spawn, so parallel-mode deposits
  /// and poisons wake idle pool workers as well as the destination rank.
  PoolSignal& pool_signal() { return pool_signal_; }

  /// Opaque per-machine extension slot for higher layers: the tasks backend
  /// hangs its cross-rank rendezvous state (per-round task arenas) here, so
  /// comm/ stays ignorant of sched/. Access only under extension_mutex().
  /// The slot lives as long as the machine; whatever is stored must not
  /// reference per-run state beyond its own lifetime rules.
  std::shared_ptr<void>& extension() { return extension_; }
  std::mutex& extension_mutex() { return extension_mutex_; }

 private:
  void run_threads(const std::function<void(int, FiberScheduler*)>& body);
  void run_fibers(const std::function<void(int, FiberScheduler*)>& body);
  void run_parallel(const std::function<void(int, FiberScheduler*)>& body);

  int size_;
  CostModel costs_;
  TraceConfig trace_;
  EngineConfig engine_;
  DeliveryInterceptor* interceptor_ = nullptr;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  PoolSignal pool_signal_;
  std::shared_ptr<void> extension_;
  std::mutex extension_mutex_;
};

}  // namespace wavepipe
