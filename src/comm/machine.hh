// The Machine: a fixed-size set of ranks executing an SPMD function on
// threads, exchanging messages through per-rank mailboxes under a shared
// CostModel.
//
// With CostModel{} (all costs zero) this is a plain in-process
// message-passing runtime whose wall-clock behaviour is whatever the host
// provides. With T3E-like alpha/beta it is the paper's machine model: every
// experiment that the authors ran on 1..16 T3E processors runs here with
// deterministic virtual times. This substitution is documented in
// DESIGN.md §2.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "comm/communicator.hh"
#include "comm/cost_model.hh"
#include "comm/mailbox.hh"
#include "comm/trace.hh"

namespace wavepipe {

/// Result of one SPMD run.
struct RunResult {
  /// Completion virtual time per rank.
  std::vector<double> vtime;
  /// Max over ranks: the machine's virtual makespan (the quantity the
  /// paper's T_comp + T_comm formulas model).
  double vtime_max = 0.0;
  /// Host wall-clock seconds for the whole run (meaningful only for
  /// single-rank or free-cost runs on this 1-core host).
  double wall_seconds = 0.0;
  /// Per-rank traffic counters and their sum.
  std::vector<CommStats> stats;
  CommStats total;
  /// Per-rank virtual-time decomposition (t_comp + t_comm + t_wait ==
  /// vtime[r]) and its sum over ranks. Always populated.
  std::vector<PhaseBreakdown> phases;
  PhaseBreakdown phases_total;
  /// Per-rank event traces; empty unless the machine's TraceConfig was
  /// enabled. Export with write_chrome_trace().
  std::vector<RankTrace> traces;
};

/// An SPMD machine of `size` ranks.
class Machine {
 public:
  /// The default TraceConfig comes from the environment (WAVEPIPE_TRACE),
  /// so existing callers stay trace-free unless the user opts in.
  explicit Machine(int size, CostModel costs = {},
                   TraceConfig trace = TraceConfig::from_env());
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int size() const { return size_; }
  const CostModel& costs() const { return costs_; }
  const TraceConfig& trace_config() const { return trace_; }

  /// Runs `fn(comm)` once on every rank and joins. Exceptions thrown by any
  /// rank poison the mailboxes (unblocking peers) and the first one is
  /// rethrown here after all threads join. The machine is reusable: a clean
  /// run leaves every mailbox empty.
  RunResult run(const std::function<void(Communicator&)>& fn);

  /// Convenience: construct, run once, return the result.
  static RunResult run(int size, CostModel costs,
                       const std::function<void(Communicator&)>& fn);

  /// As above, with an explicit trace configuration.
  static RunResult run(int size, CostModel costs, TraceConfig trace,
                       const std::function<void(Communicator&)>& fn);

  Mailbox& mailbox(int rank);

  /// Sum of messages still queued in all mailboxes (0 after a clean run).
  std::size_t pending_messages() const;

 private:
  int size_;
  CostModel costs_;
  TraceConfig trace_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace wavepipe
