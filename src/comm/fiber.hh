// Cooperative-fiber execution engine for the SPMD Machine.
//
// The threaded engine pays a kernel context switch plus a lock handoff for
// every message, which on a small host dominates wall-clock time. This
// engine runs all ranks as stackful fibers (POSIX ucontext) on the calling
// thread: a rank runs until it blocks (recv with no matching message, a
// collective waiting on a peer), then the scheduler switches — in user
// space, no locks — to the runnable rank with the earliest virtual clock
// (rank id as tiebreak). Because virtual times, stats, phases, and trace
// stamps depend only on per-rank program order and sender-computed arrival
// stamps, the fiber engine produces results byte-identical to the threaded
// engine (asserted in tests/test_engine_equivalence.cc); scheduling order
// is additionally deterministic, run to run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "comm/mailbox.hh"

namespace wavepipe {

/// How Machine::run executes its ranks.
enum class EngineKind {
  kThreads,   // one OS thread per rank (the original engine)
  kFibers,    // all ranks as cooperative fibers on the calling thread
  kParallel,  // one core-pinned OS thread per rank, lock-free SPSC mailboxes
};

const char* to_string(EngineKind k);

/// How the fiber scheduler picks the next runnable rank.
enum class SchedKind {
  kEarliestVtime,  // deterministic: smallest (vtime, rank) — the default
  kRandom,         // seeded random pick among runnable ranks (chaos testing)
};

const char* to_string(SchedKind k);

/// Fiber scheduling policy. kRandom exists to *prove* schedule independence:
/// results (vtimes, stats, phases, traces, array contents) of any program
/// that avoids the probe-class operations must be byte-identical under every
/// seed, because they depend only on per-rank program order and
/// sender-computed arrival stamps. The pick sequence is a pure function of
/// the seed and the observed runnable sets, so any run replays exactly from
/// its seed.
struct SchedConfig {
  SchedKind kind = SchedKind::kEarliestVtime;
  std::uint64_t seed = 0;
  /// Optional per-rank pick weights under kRandom (empty = uniform, missing
  /// trailing ranks default to 1). The chaos harness uses small weights to
  /// model slowed-down ranks; weights perturb the schedule only, never
  /// results.
  std::vector<double> rank_weights;
};

/// True when the platform provides the context-switching API the fiber
/// engine needs (POSIX ucontext + mmap). When false, a Machine asked for
/// kFibers falls back to kThreads with a logged warning.
bool fibers_supported();

struct EngineConfig {
  /// Per-fiber stack size before clamping (WAVEPIPE_FIBER_STACK). The
  /// default fits every workload in this repository with a wide margin;
  /// rank bodies keep bulk data on the heap (DenseArray, message payloads).
  static constexpr std::size_t kDefaultStackBytes = std::size_t{1} << 20;
  /// Machine clamps smaller requests up to this floor.
  static constexpr std::size_t kMinStackBytes = std::size_t{64} << 10;

  EngineKind kind = EngineKind::kFibers;
  std::size_t stack_bytes = kDefaultStackBytes;
  SchedConfig sched;
  /// Parallel engine only: pin rank r's thread to core r mod
  /// hardware_concurrency (best-effort, Linux). Pinning keeps the SPSC
  /// producer/consumer pairs cache-resident; disable (WAVEPIPE_PIN=0) when
  /// sharing the host with other work.
  bool pin_threads = true;

  /// WAVEPIPE_ENGINE=threads|fibers|parallel selects the engine (default
  /// fibers); WAVEPIPE_FIBER_STACK=N[k|m] sizes fiber stacks in bytes
  /// (suffixes for KiB / MiB); WAVEPIPE_SCHED=deterministic|random:<seed>
  /// selects the fiber scheduling policy (default deterministic);
  /// WAVEPIPE_PIN=0|1 toggles parallel-engine core pinning (default 1).
  /// Unparseable values throw ConfigError naming the valid set.
  static EngineConfig from_env();
};

class Communicator;

/// The cooperative scheduler: owns one fiber per rank and implements the
/// MailboxBlocker seam so unmatched receives yield instead of waiting on a
/// condition variable. One instance serves one Machine::run call.
class FiberScheduler : public MailboxBlocker {
 public:
  FiberScheduler(int ranks, std::size_t stack_bytes, SchedConfig sched = {});
  ~FiberScheduler() override;

  FiberScheduler(const FiberScheduler&) = delete;
  FiberScheduler& operator=(const FiberScheduler&) = delete;

  /// Chaos seam: invoked once per scheduling iteration (deadlock=false,
  /// before the pick) and again when every unfinished rank is blocked
  /// (deadlock=true). A deadlock call returning true means machine state
  /// changed (e.g. delayed messages were finally delivered), so the
  /// scheduler re-polls instead of declaring deadlock. Returns from
  /// deadlock=false calls are ignored.
  using StepHook = std::function<bool(std::uint64_t step, bool deadlock)>;
  void set_step_hook(StepHook hook);

  /// Registers rank's virtual clock (called by the rank's own fiber once
  /// its Communicator exists); the scheduler reads it to order runnable
  /// ranks earliest-vtime-first. Unbound ranks order as vtime 0.
  void bind_clock(int rank, const double* vtime);

  /// Runs body(rank) for every rank to completion on the calling thread.
  /// When every unfinished rank is blocked (a communication deadlock, which
  /// the threaded engine would hang on), `on_deadlock` is invoked to poison
  /// the machine's mailboxes; the blocked fibers then unwind their stacks
  /// normally and run() throws EngineError naming the blocked ranks.
  /// EngineError is also thrown when a fiber overflows its stack (detected
  /// via a low-stack check at every block point plus a canary zone — see
  /// DESIGN.md §9).
  void run(const std::function<void(int)>& body,
           const std::function<void()>& on_deadlock);

  // MailboxBlocker seam (called from fiber context / by depositing ranks).
  void block(Mailbox& mb) override;
  void notify(Mailbox& mb) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavepipe
