// DistArray: a rank's slice of a block-distributed global array.
//
// Each SPMD rank constructs the DistArrays it participates in; the local
// DenseArray covers the rank's owned region expanded by the layout's fluff
// widths, addressed in global coordinates, so statement code is identical
// on 1 or 64 ranks.
#pragma once

#include <string>
#include <utility>

#include "array/dense.hh"
#include "dist/layout.hh"

namespace wavepipe {

template <typename T, Rank R>
class DistArray {
 public:
  DistArray(std::string name, const Layout<R>& layout, int rank,
            StorageOrder order = StorageOrder::kColMajor, T init = T{})
      : layout_(layout),
        rank_(rank),
        owned_(layout.owned(rank)),
        local_(std::move(name), layout.allocated(rank), order, init) {}

  const Layout<R>& layout() const { return layout_; }
  int rank() const { return rank_; }

  /// The sub-region this rank owns (no fluff).
  const Region<R>& owned() const { return owned_; }

  /// The local storage (owned region plus fluff), global-indexed.
  DenseArray<T, R>& local() { return local_; }
  const DenseArray<T, R>& local() const { return local_; }

  const std::string& name() const { return local_.name(); }

  /// Element access by global index (must fall inside the allocated
  /// region, i.e. owned or fluff).
  T& operator()(const Idx<R>& i) { return local_(i); }
  const T& operator()(const Idx<R>& i) const { return local_(i); }

  /// Fills the *owned* region from a function of the global index (fluff is
  /// left untouched; use ghost exchange or boundary fills for that).
  template <typename Fn>
  void fill_owned(Fn&& fn) {
    for_each(owned_, [&](const Idx<R>& i) { local_(i) = fn(i); });
  }

  /// Fills any allocated cells lying outside the global region (physical
  /// boundary fluff) from a function; interior fluff is skipped.
  template <typename Fn>
  void fill_exterior(Fn&& fn) {
    const Region<R> global = layout_.global();
    for_each(local_.region(), [&](const Idx<R>& i) {
      if (!global.contains(i)) local_(i) = fn(i);
    });
  }

 private:
  Layout<R> layout_;
  int rank_;
  Region<R> owned_;
  DenseArray<T, R> local_;
};

}  // namespace wavepipe
