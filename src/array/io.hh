// Whole-array movement between root and the machine, plus textual dumps.
//
// gather_to_root / scatter_from_root let drivers initialize problems on
// rank 0, distribute them, and collect results for verification — the
// pattern every test of executor equivalence uses.
#pragma once

#include <iomanip>
#include <optional>
#include <ostream>

#include "array/ghost.hh"

namespace wavepipe {

/// Collects the owned blocks of every rank onto rank 0 as one dense array
/// over the global region. Returns nullopt on non-root ranks. Collective.
template <typename T, Rank R>
std::optional<DenseArray<T, R>> gather_to_root(const DistArray<T, R>& a,
                                               Communicator& comm,
                                               int tag = 900) {
  const Layout<R>& layout = a.layout();
  if (comm.rank() != 0) {
    if (!a.owned().empty()) {
      auto buf = pack_region(a.local(), a.owned());
      comm.send(0, std::span<const T>(buf), tag);
    }
    return std::nullopt;
  }
  DenseArray<T, R> full(a.name(), layout.global(), a.local().order());
  for_each(a.owned(), [&](const Idx<R>& i) { full(i) = a.local()(i); });
  for (int r = 1; r < comm.size(); ++r) {
    const Region<R> owned_r = layout.owned(r);
    if (owned_r.empty()) continue;
    std::vector<T> buf(static_cast<std::size_t>(owned_r.size()));
    comm.recv(r, std::span<T>(buf), tag);
    unpack_region(full, owned_r, buf);
  }
  return full;
}

/// Distributes `full` (valid on rank 0 only) into each rank's owned block.
/// Collective.
template <typename T, Rank R>
void scatter_from_root(const DenseArray<T, R>* full, DistArray<T, R>& a,
                       Communicator& comm, int tag = 901) {
  const Layout<R>& layout = a.layout();
  if (comm.rank() == 0) {
    require(full != nullptr, "root must supply the full array");
    require(full->region().contains(layout.global()),
            "scatter source must cover the global region");
    for_each(a.owned(), [&](const Idx<R>& i) { a.local()(i) = (*full)(i); });
    for (int r = 1; r < comm.size(); ++r) {
      const Region<R> owned_r = layout.owned(r);
      if (owned_r.empty()) continue;
      auto buf = pack_region(*full, owned_r);
      comm.send(r, std::span<const T>(buf), tag);
    }
  } else {
    if (!a.owned().empty()) {
      std::vector<T> buf(static_cast<std::size_t>(a.owned().size()));
      comm.recv(0, std::span<T>(buf), tag);
      unpack_region(a.local(), a.owned(), buf);
    }
  }
}

/// Prints a rank-2 array as a matrix (tests, examples; small arrays only).
template <typename T>
void print_matrix(std::ostream& os, const DenseArray<T, 2>& a, int width = 8,
                  int precision = 3) {
  const Region<2>& r = a.region();
  os << a.name() << " " << to_string(r) << ":\n";
  for (Coord i = r.lo(0); i <= r.hi(0); ++i) {
    for (Coord j = r.lo(1); j <= r.hi(1); ++j) {
      os << std::setw(width) << std::setprecision(precision)
         << a(Idx<2>{{i, j}});
    }
    os << '\n';
  }
}

}  // namespace wavepipe
