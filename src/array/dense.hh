// DenseArray: the local storage type of the array language.
//
// A DenseArray<T, R> owns a rank-R rectangular block of elements addressed
// by *global* indices (its region need not start at zero — a distributed
// rank allocates exactly its owned-plus-fluff region in global
// coordinates). Storage order is a runtime property because the paper's
// uniprocessor cache study (Fig 6) depends on Fortran's column-major
// layout; the default here is column-major to match the benchmarks it
// reproduces.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "index/region.hh"

namespace wavepipe {

enum class StorageOrder { kRowMajor, kColMajor };

/// The dimension whose unit stride is contiguous in memory.
constexpr Rank contiguous_dim(StorageOrder order, Rank rank) {
  return order == StorageOrder::kRowMajor ? rank - 1 : 0;
}

template <typename T, Rank R>
class DenseArray {
 public:
  DenseArray(std::string name, const Region<R>& region,
             StorageOrder order = StorageOrder::kColMajor, T init = T{})
      : name_(std::move(name)), region_(region), order_(order) {
    require(!region.empty(), "DenseArray needs a non-empty region");
    for (Rank d = 0; d < R; ++d) extent_[d] = region.extent(d);
    compute_strides();
    data_.assign(static_cast<std::size_t>(region.size()), init);
  }

  DenseArray(const DenseArray&) = delete;
  DenseArray& operator=(const DenseArray&) = delete;
  DenseArray(DenseArray&&) noexcept = default;
  DenseArray& operator=(DenseArray&&) noexcept = default;

  const std::string& name() const { return name_; }
  const Region<R>& region() const { return region_; }
  StorageOrder order() const { return order_; }
  Coord stride(Rank d) const { return stride_[d]; }

  /// Stable identity used by the DSL to recognize "the same array" across
  /// statements. Valid as long as the array is not moved.
  const void* id() const { return static_cast<const void*>(this); }

  /// Unchecked element access by global index.
  T& operator()(const Idx<R>& i) { return data_[offset(i)]; }
  const T& operator()(const Idx<R>& i) const { return data_[offset(i)]; }

  /// Convenience for rank-2/3 call sites: a(i, j), a(i, j, k).
  template <typename... C>
    requires(sizeof...(C) == R && (std::is_convertible_v<C, Coord> && ...))
  T& operator()(C... c) {
    return (*this)(Idx<R>{{static_cast<Coord>(c)...}});
  }
  template <typename... C>
    requires(sizeof...(C) == R && (std::is_convertible_v<C, Coord> && ...))
  const T& operator()(C... c) const {
    return (*this)(Idx<R>{{static_cast<Coord>(c)...}});
  }

  /// Checked element access.
  T& at(const Idx<R>& i) {
    require(region_.contains(i),
            "index " + to_string(i) + " outside array '" + name_ + "' region " +
                to_string(region_));
    return data_[offset(i)];
  }
  const T& at(const Idx<R>& i) const {
    return const_cast<DenseArray*>(this)->at(i);
  }

  void fill(T v) { data_.assign(data_.size(), v); }

  /// Fills from a function of the global index.
  template <typename Fn>
  void fill_fn(Fn&& fn) {
    for_each(region_, [&](const Idx<R>& i) { (*this)(i) = fn(i); });
  }

  /// Copies the values of `src` on `where` (must be contained in both).
  void copy_from(const DenseArray& src, const Region<R>& where) {
    require(region_.contains(where) && src.region().contains(where),
            "copy_from region must be contained in both arrays");
    for_each(where, [&](const Idx<R>& i) { (*this)(i) = src(i); });
  }

  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

  /// Linear offset of a global index into raw().
  std::size_t offset(const Idx<R>& i) const {
    Coord off = 0;
    for (Rank d = 0; d < R; ++d)
      off += (i.v[d] - region_.lo(d)) * stride_[d];
    return static_cast<std::size_t>(off);
  }

 private:
  void compute_strides() {
    if (order_ == StorageOrder::kRowMajor) {
      stride_[R - 1] = 1;
      for (Rank d = R - 1; d-- > 0;) stride_[d] = stride_[d + 1] * extent_[d + 1];
    } else {
      stride_[0] = 1;
      for (Rank d = 1; d < R; ++d) stride_[d] = stride_[d - 1] * extent_[d - 1];
    }
  }

  std::string name_;
  Region<R> region_;
  StorageOrder order_;
  std::array<Coord, R> extent_{};
  std::array<Coord, R> stride_{};
  std::vector<T> data_;
};

/// Max |difference| between two same-region arrays; convergence checks and
/// executor-equivalence tests.
template <typename T, Rank R>
T max_abs_difference(const DenseArray<T, R>& a, const DenseArray<T, R>& b) {
  require(a.region() == b.region(), "arrays must cover the same region");
  T m = T{};
  for_each(a.region(), [&](const Idx<R>& i) {
    const T d = a(i) < b(i) ? b(i) - a(i) : a(i) - b(i);
    if (d > m) m = d;
  });
  return m;
}

}  // namespace wavepipe
