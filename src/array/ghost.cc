// Ghost exchange is header-only (ghost.hh); this unit anchors the wp_array
// library.
#include "array/ghost.hh"

namespace wavepipe {
// No out-of-line definitions; see ghost.hh.
}  // namespace wavepipe
