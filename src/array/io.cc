// Array I/O is header-only (io.hh); this unit anchors the wp_array library.
#include "array/io.hh"

namespace wavepipe {
// No out-of-line definitions; see io.hh.
}  // namespace wavepipe
