// Ghost (fluff) exchange for @-shift references.
//
// Unprimed @-references of arrays not written in a scan block read
// neighbour values computed *before* the block; those flow through a
// conventional halo exchange, implemented here. (Primed references flow
// through the wavefront executors' pipelined sends instead.)
#pragma once

#include <vector>

#include "array/dist_array.hh"
#include "comm/communicator.hh"

namespace wavepipe {

/// A direction that is `amount` along dimension d and zero elsewhere.
template <Rank R>
constexpr Direction<R> face_shift(Rank d, Coord amount) {
  Direction<R> dir{};
  dir.v[d] = amount;
  return dir;
}

/// Packs the values of `a` on `face` (global indices, must be inside the
/// allocated region) into a flat buffer in canonical order.
template <typename T, Rank R>
std::vector<T> pack_region(const DenseArray<T, R>& a, const Region<R>& face) {
  std::vector<T> buf;
  buf.reserve(static_cast<std::size_t>(face.size()));
  for_each(face, [&](const Idx<R>& i) { buf.push_back(a(i)); });
  return buf;
}

/// Unpacks a flat buffer (canonical order) into `a` on `face`.
template <typename T, Rank R>
void unpack_region(DenseArray<T, R>& a, const Region<R>& face,
                   const std::vector<T>& buf) {
  require(static_cast<Coord>(buf.size()) == face.size(),
          "unpack buffer size mismatch");
  std::size_t k = 0;
  for_each(face, [&](const Idx<R>& i) { a(i) = buf[k++]; });
}

/// Exchanges `width[d]`-deep faces of the owned region with both neighbours
/// along every distributed dimension, filling the fluff cells that the
/// @-shifts of a statement read. Dimensions are exchanged in order, and the
/// faces sent along dimension d are expanded by the widths of dimensions
/// < d, so corner fluff (diagonal stencils) propagates transitively.
/// Collective: must be called by every rank of the grid. This overload
/// works on a local DenseArray (as the wavefront executors hold them); the
/// DistArray overload below delegates here.
template <typename T, Rank R>
void exchange_ghosts(DenseArray<T, R>& local, const Layout<R>& layout,
                     int rank, Communicator& comm, const Idx<R>& width,
                     int tag_base = 100) {
  const ProcGrid<R>& grid = layout.grid();
  const Region<R> owned = layout.owned(rank);
  if (owned.empty()) return;

  // The region a face spans in dimensions other than the exchange
  // dimension, growing as earlier dimensions complete their exchanges.
  Region<R> span = owned;

  for (Rank d = 0; d < R; ++d) {
    if (width.v[d] <= 0) continue;
    if (!grid.distributed(d)) {
      span = span.with_dim(d, span.lo(d) - width.v[d], span.hi(d) + width.v[d])
                 .intersect(local.region());
      continue;
    }

    const int low_nbr = grid.neighbor(rank, d, -1);
    const int high_nbr = grid.neighbor(rank, d, +1);
    const int tag_up = tag_base + 2 * static_cast<int>(d);        // toward -d
    const int tag_down = tag_base + 2 * static_cast<int>(d) + 1;  // toward +d
    const Coord w = width.v[d];

    // Send both faces before receiving: sends are buffered, so the
    // symmetric pattern cannot deadlock.
    if (low_nbr >= 0) {
      auto buf = pack_region(local, span.low_face(d, w));
      comm.send(low_nbr, std::span<const T>(buf), tag_up);
    }
    if (high_nbr >= 0) {
      auto buf = pack_region(local, span.high_face(d, w));
      comm.send(high_nbr, std::span<const T>(buf), tag_down);
    }
    if (low_nbr >= 0) {
      const Region<R> fluff_lo =
          span.low_face(d, w).shifted(face_shift<R>(d, -w));
      require(local.region().contains(fluff_lo),
              "array '" + local.name() +
                  "' allocates too little fluff for a ghost exchange of "
                  "width " + std::to_string(w) + " along dimension " +
                  std::to_string(d));
      std::vector<T> buf(static_cast<std::size_t>(fluff_lo.size()));
      comm.recv(low_nbr, std::span<T>(buf), tag_down);
      unpack_region(local, fluff_lo, buf);
    }
    if (high_nbr >= 0) {
      const Region<R> fluff_hi =
          span.high_face(d, w).shifted(face_shift<R>(d, w));
      require(local.region().contains(fluff_hi),
              "array '" + local.name() +
                  "' allocates too little fluff for a ghost exchange of "
                  "width " + std::to_string(w) + " along dimension " +
                  std::to_string(d));
      std::vector<T> buf(static_cast<std::size_t>(fluff_hi.size()));
      comm.recv(high_nbr, std::span<T>(buf), tag_up);
      unpack_region(local, fluff_hi, buf);
    }

    // Dimension d is now coherent out to the fluff; later dimensions'
    // faces include it so corners become coherent too.
    span = span.with_dim(d, span.lo(d) - w, span.hi(d) + w)
               .intersect(local.region());
  }
}

/// DistArray convenience overload.
template <typename T, Rank R>
void exchange_ghosts(DistArray<T, R>& a, Communicator& comm,
                     const Idx<R>& width, int tag_base = 100) {
  exchange_ghosts(a.local(), a.layout(), a.rank(), comm, width, tag_base);
}

}  // namespace wavepipe
