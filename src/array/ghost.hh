// Ghost (fluff) exchange for @-shift references.
//
// Unprimed @-references of arrays not written in a scan block read
// neighbour values computed *before* the block; those flow through a
// conventional halo exchange, implemented here. (Primed references flow
// through the wavefront executors' pipelined sends instead.)
//
// The exchange is bundled and nonblocking: per distributed dimension, ALL
// arrays' faces for a given neighbour travel as one message (the paper's
// alpha is paid once per neighbour, not once per array), receives are
// posted before packing begins, and send completions are settled once at
// the end of the whole exchange — so in virtual time the send engine
// drains while the rank packs, unpacks, and stalls on its neighbours.
#pragma once

#include <span>
#include <vector>

#include "array/dist_array.hh"
#include "comm/communicator.hh"

namespace wavepipe {

/// A direction that is `amount` along dimension d and zero elsewhere.
template <Rank R>
constexpr Direction<R> face_shift(Rank d, Coord amount) {
  Direction<R> dir{};
  dir.v[d] = amount;
  return dir;
}

/// Packs the values of `a` on `face` (global indices, must be inside the
/// allocated region) into a flat buffer in canonical order.
template <typename T, Rank R>
std::vector<T> pack_region(const DenseArray<T, R>& a, const Region<R>& face) {
  std::vector<T> buf;
  buf.reserve(static_cast<std::size_t>(face.size()));
  for_each(face, [&](const Idx<R>& i) { buf.push_back(a(i)); });
  return buf;
}

/// Appends `face`'s values to `buf` (canonical order): the building block
/// for bundled messages and persistent send buffers.
template <typename T, Rank R>
void pack_region_into(const DenseArray<T, R>& a, const Region<R>& face,
                      std::vector<T>& buf) {
  buf.reserve(buf.size() + static_cast<std::size_t>(face.size()));
  for_each(face, [&](const Idx<R>& i) { buf.push_back(a(i)); });
}

/// Unpacks a flat buffer (canonical order) into `a` on `face`. Takes a
/// span so callers can unpack slices of a bundled message without copying
/// them out first.
template <typename T, Rank R>
void unpack_region(DenseArray<T, R>& a, const Region<R>& face,
                   std::span<const T> buf) {
  require(static_cast<Coord>(buf.size()) == face.size(),
          "unpack buffer size mismatch");
  std::size_t k = 0;
  for_each(face, [&](const Idx<R>& i) { a(i) = buf[k++]; });
}

/// Vector convenience overload (template deduction cannot convert a
/// vector argument to a span parameter on its own).
template <typename T, Rank R>
void unpack_region(DenseArray<T, R>& a, const Region<R>& face,
                   const std::vector<T>& buf) {
  unpack_region(a, face, std::span<const T>(buf));
}

/// One array's participation in a bundled ghost exchange: exchange
/// width.v[d]-deep faces of `array` along every distributed dimension d.
template <typename T, Rank R>
struct GhostHalo {
  DenseArray<T, R>* array = nullptr;
  Idx<R> width{};
};

namespace detail {

template <typename T, Rank R>
void require_fluff(const DenseArray<T, R>& a, const Region<R>& fluff, Coord w,
                   Rank d) {
  require(a.region().contains(fluff),
          "array '" + a.name() +
              "' allocates too little fluff for a ghost exchange of width " +
              std::to_string(w) + " along dimension " + std::to_string(d));
}

}  // namespace detail

/// Bundled exchange: fills the fluff of every array in `halos` with its
/// neighbours' values, one message per (neighbour, dimension) carrying all
/// participating arrays' faces concatenated in `halos` order. Dimensions
/// are exchanged in order and each array's face span grows by its own
/// widths as dimensions complete, so corner fluff (diagonal stencils)
/// propagates transitively exactly as in the per-array exchange.
/// Collective: every rank of the grid must call with the same `halos`
/// structure. Consumes tags tag_base .. tag_base + 2*R - 1.
template <typename T, Rank R>
void exchange_ghosts(std::span<const GhostHalo<T, R>> halos,
                     const Layout<R>& layout, int rank, Communicator& comm,
                     int tag_base = 100) {
  const ProcGrid<R>& grid = layout.grid();
  const Region<R> owned = layout.owned(rank);
  if (owned.empty() || halos.empty()) return;

  // The region array i's faces span in dimensions other than the exchange
  // dimension, growing as earlier dimensions complete their exchanges.
  std::vector<Region<R>> span(halos.size(), owned);

  std::vector<T> send_lo, send_hi, recv_lo, recv_hi;
  std::vector<Request> send_reqs;
  std::vector<std::size_t> active;  // indices into halos, per dimension

  for (Rank d = 0; d < R; ++d) {
    if (!grid.distributed(d)) {
      for (std::size_t i = 0; i < halos.size(); ++i) {
        const Coord w = halos[i].width.v[d];
        if (w <= 0) continue;
        span[i] = span[i]
                      .with_dim(d, span[i].lo(d) - w, span[i].hi(d) + w)
                      .intersect(halos[i].array->region());
      }
      continue;
    }

    active.clear();
    for (std::size_t i = 0; i < halos.size(); ++i)
      if (halos[i].width.v[d] > 0) active.push_back(i);
    if (active.empty()) continue;

    const int low_nbr = grid.neighbor(rank, d, -1);
    const int high_nbr = grid.neighbor(rank, d, +1);
    const int tag_up = tag_base + 2 * static_cast<int>(d);        // toward -d
    const int tag_down = tag_base + 2 * static_cast<int>(d) + 1;  // toward +d

    // Post both receives before any packing: the bundle sizes are known
    // from the fluff regions alone.
    Request r_lo, r_hi;
    if (low_nbr >= 0) {
      std::size_t total = 0;
      for (const std::size_t i : active) {
        const Coord w = halos[i].width.v[d];
        const Region<R> fluff =
            span[i].low_face(d, w).shifted(face_shift<R>(d, -w));
        detail::require_fluff(*halos[i].array, fluff, w, d);
        total += static_cast<std::size_t>(fluff.size());
      }
      recv_lo.resize(total);
      r_lo = comm.irecv(low_nbr, std::span<T>(recv_lo), tag_down);
    }
    if (high_nbr >= 0) {
      std::size_t total = 0;
      for (const std::size_t i : active) {
        const Coord w = halos[i].width.v[d];
        const Region<R> fluff =
            span[i].high_face(d, w).shifted(face_shift<R>(d, w));
        detail::require_fluff(*halos[i].array, fluff, w, d);
        total += static_cast<std::size_t>(fluff.size());
      }
      recv_hi.resize(total);
      r_hi = comm.irecv(high_nbr, std::span<T>(recv_hi), tag_up);
    }

    // Pack and start both sends. isend copies the payload out, so the
    // pack buffers are immediately reusable; completion is settled once,
    // after every dimension's faces have shipped.
    if (low_nbr >= 0) {
      send_lo.clear();
      for (const std::size_t i : active)
        pack_region_into(*halos[i].array,
                         span[i].low_face(d, halos[i].width.v[d]), send_lo);
      send_reqs.push_back(
          comm.isend(low_nbr, std::span<const T>(send_lo), tag_up));
    }
    if (high_nbr >= 0) {
      send_hi.clear();
      for (const std::size_t i : active)
        pack_region_into(*halos[i].array,
                         span[i].high_face(d, halos[i].width.v[d]), send_hi);
      send_reqs.push_back(
          comm.isend(high_nbr, std::span<const T>(send_hi), tag_down));
    }

    // Complete the receives and scatter the bundles into the fluff.
    if (low_nbr >= 0) {
      comm.wait(r_lo);
      std::size_t off = 0;
      for (const std::size_t i : active) {
        const Coord w = halos[i].width.v[d];
        const Region<R> fluff =
            span[i].low_face(d, w).shifted(face_shift<R>(d, -w));
        const std::size_t n = static_cast<std::size_t>(fluff.size());
        unpack_region(*halos[i].array, fluff,
                      std::span<const T>(recv_lo).subspan(off, n));
        off += n;
      }
    }
    if (high_nbr >= 0) {
      comm.wait(r_hi);
      std::size_t off = 0;
      for (const std::size_t i : active) {
        const Coord w = halos[i].width.v[d];
        const Region<R> fluff =
            span[i].high_face(d, w).shifted(face_shift<R>(d, w));
        const std::size_t n = static_cast<std::size_t>(fluff.size());
        unpack_region(*halos[i].array, fluff,
                      std::span<const T>(recv_hi).subspan(off, n));
        off += n;
      }
    }

    // Dimension d is now coherent out to the fluff; later dimensions'
    // faces include it so corners become coherent too.
    for (const std::size_t i : active) {
      const Coord w = halos[i].width.v[d];
      span[i] = span[i]
                    .with_dim(d, span[i].lo(d) - w, span[i].hi(d) + w)
                    .intersect(halos[i].array->region());
    }
  }

  comm.wait_all(std::span<Request>(send_reqs));
}

/// Single-array exchange: a one-entry bundle.
template <typename T, Rank R>
void exchange_ghosts(DenseArray<T, R>& local, const Layout<R>& layout,
                     int rank, Communicator& comm, const Idx<R>& width,
                     int tag_base = 100) {
  const GhostHalo<T, R> h{&local, width};
  exchange_ghosts(std::span<const GhostHalo<T, R>>(&h, 1), layout, rank, comm,
                  tag_base);
}

/// DistArray convenience overload.
template <typename T, Rank R>
void exchange_ghosts(DistArray<T, R>& a, Communicator& comm,
                     const Idx<R>& width, int tag_base = 100) {
  exchange_ghosts(a.local(), a.layout(), a.rank(), comm, width, tag_base);
}

}  // namespace wavepipe
