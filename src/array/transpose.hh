// Distributed 2-D transpose.
//
// ZPL programs that cannot (or whose compiler will not) pipeline a
// wavefront can instead transpose the data so the wavefront dimension
// becomes processor-local (paper §2.2, Summary: "perform a transposition
// between each north-south and east-west wavefront, eliminating the need
// for pipelining. This may be much slower than a fully pipelined
// solution."). This header provides the all-to-all transpose that strategy
// needs; bench/transpose_vs_pipeline quantifies the comparison.
#pragma once

#include "array/io.hh"

namespace wavepipe {

/// The transpose of a rank-2 region: [a..b, c..d] -> [c..d, a..b].
inline Region<2> transposed_region(const Region<2>& r) {
  return Region<2>({{r.lo(1), r.lo(0)}}, {{r.hi(1), r.hi(0)}});
}

/// A layout for the transpose of `src`: global region transposed, the
/// *same* processor grid, fluff widths swapped. Keeping the grid is what
/// makes the transpose useful against wavefronts: data serialized across
/// processors along dimension 0 becomes processor-local along dimension 1
/// of the transposed array.
inline Layout<2> transposed_layout(const Layout<2>& src) {
  return Layout<2>(transposed_region(src.global()), src.grid(),
                   Idx<2>{{src.fluff().v[1], src.fluff().v[0]}});
}

/// dst(j, i) = src(i, j) across the machine. `dst` must live on the
/// transposed layout (same machine size). All-to-all: every rank sends
/// each peer the intersection of its owned data with the peer's
/// (back-transposed) destination block. Collective.
template <typename T>
void transpose(const DistArray<T, 2>& src, DistArray<T, 2>& dst,
               Communicator& comm, int tag_base = 700) {
  const Layout<2>& sl = src.layout();
  const Layout<2>& dl = dst.layout();
  require(dl.global() == transposed_region(sl.global()),
          "destination layout must cover the transposed global region");
  require(sl.grid().size() == comm.size() && dl.grid().size() == comm.size(),
          "transpose layouts must span the whole machine");

  const int p = comm.size();
  const int me = comm.rank();

  // What rank a must send rank b: src values on T(owned_dst(b)) ∩
  // owned_src(a), packed in that intersection's canonical order. Both
  // sides compute the same region independently.
  auto chunk_region = [&](int from, int to) {
    return transposed_region(dl.owned(to)).intersect(sl.owned(from));
  };

  // Local part without communication.
  {
    const Region<2> mine = chunk_region(me, me);
    for_each(mine, [&](const Idx<2>& i) {
      dst(Idx<2>{{i.v[1], i.v[0]}}) = src(i);
    });
  }

  // Sends first (buffered), then receives: no deadlock.
  for (int to = 0; to < p; ++to) {
    if (to == me) continue;
    const Region<2> reg = chunk_region(me, to);
    if (reg.empty()) continue;
    const auto buf = pack_region(src.local(), reg);
    comm.send(to, std::span<const T>(buf), tag_base);
  }
  for (int from = 0; from < p; ++from) {
    if (from == me) continue;
    const Region<2> reg = chunk_region(from, me);
    if (reg.empty()) continue;
    std::vector<T> buf(static_cast<std::size_t>(reg.size()));
    comm.recv(from, std::span<T>(buf), tag_base);
    std::size_t k = 0;
    for_each(reg, [&](const Idx<2>& i) {
      dst(Idx<2>{{i.v[1], i.v[0]}}) = buf[k++];
    });
  }
}

}  // namespace wavepipe
