// Tomcatv demo: the full mesh-generation solver, run serially for
// convergence and then distributed with naive versus pipelined wavefronts
// under the calibrated T3E model.
//
//   ./build/examples/tomcatv_demo [--n=128] [--iterations=10] [--p=8]
#include <iostream>

#include "apps/tomcatv.hh"
#include "exec/block_select.hh"
#include "model/machines.hh"
#include "support/options.hh"
#include "support/table.hh"

using namespace wavepipe;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const Coord n = opts.get_int("n", 128);
  const int iterations = static_cast<int>(opts.get_int("iterations", 10));
  const int p = static_cast<int>(opts.get_int("p", 8));

  std::cout << "Tomcatv mesh solver, n=" << n << "\n\n";

  // 1. Serial convergence history.
  {
    TomcatvConfig cfg;
    cfg.n = n;
    Tomcatv app(cfg, ProcGrid<2>({1, 1}), 0);
    Machine::run(1, {}, [&](Communicator& comm) {
      std::cout << "serial convergence (max residual per iteration):\n ";
      for (int it = 0; it < iterations; ++it)
        std::cout << " " << fmt(app.iterate(comm), 3);
      std::cout << "\n  checksum " << fmt(app.checksum(comm), 10) << "\n\n";
    });
  }

  // 2. Distributed under the T3E model: naive vs pipelined.
  const MachinePreset machine = t3e_like();
  const Coord block = select_block_static(machine.costs, n - 2, p);
  TomcatvConfig cfg;
  cfg.n = n;
  cfg.iterations = iterations;
  const ProcGrid<2> grid = ProcGrid<2>::along_dim(p, 0);

  auto run_with = [&](Coord b) {
    double checksum = 0.0;
    auto res = Machine::run(p, machine.costs, [&](Communicator& comm) {
      Tomcatv app(cfg, grid, comm.rank());
      WaveOptions wopts;
      wopts.block = b;
      for (int it = 0; it < iterations; ++it) app.iterate(comm, wopts);
      const Real cs = app.checksum(comm);
      if (comm.rank() == 0) checksum = cs;
    });
    return std::pair<double, double>(res.vtime_max, checksum);
  };

  const auto [naive_t, naive_cs] = run_with(0);
  const auto [pipe_t, pipe_cs] = run_with(block);

  Table t("distributed run (" + std::string(machine.name) + ", p=" +
          std::to_string(p) + ", Eq(1) block=" + std::to_string(block) + ")");
  t.set_header({"schedule", "virtual time", "checksum"});
  t.add_row({"naive (Fig 4a)", fmt(naive_t, 6), fmt(naive_cs, 10)});
  t.add_row({"pipelined (Fig 4b)", fmt(pipe_t, 6), fmt(pipe_cs, 10)});
  t.add_note("speedup due to pipelining: " + fmt_speedup(naive_t / pipe_t));
  t.add_note("identical checksums: the schedules compute the same values");
  t.print(std::cout);
  return 0;
}
