// SOR demo: Gauss-Seidel with natural ordering on the Poisson problem —
// the textbook wavefront — including online block-size auto-tuning (the
// paper's future-work "dynamic techniques").
//
//   ./build/examples/heat_sor_demo [--n=96] [--p=4] [--iterations=40]
#include <iostream>

#include "apps/sor.hh"
#include "exec/block_select.hh"
#include "model/machines.hh"
#include "support/options.hh"
#include "support/table.hh"

using namespace wavepipe;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const Coord n = opts.get_int("n", 96);
  const int p = static_cast<int>(opts.get_int("p", 4));
  const int iterations = static_cast<int>(opts.get_int("iterations", 40));

  std::cout << "SOR (natural ordering) on -lap(u) = f, " << n << "x" << n
            << " grid, omega = 1.5\n\n";

  const MachinePreset machine = t3e_like();
  const ProcGrid<2> grid = ProcGrid<2>::along_dim(p, 0);
  SorConfig cfg;
  cfg.n = n;

  // Iterative solve with the auto-tuner picking the pipeline block size
  // from the first few sweeps' virtual times.
  double vt_total = 0.0;
  double residual = 0.0;
  Coord tuned_b = 0;
  std::size_t tuning_waves = 0;
  Machine::run(p, machine.costs, [&](Communicator& comm) {
    Sor app(cfg, grid, comm.rank());
    BlockAutoTuner tuner(n - 2);
    double last_vt = comm.vtime();
    for (int it = 0; it < iterations; ++it) {
      WaveOptions wopts;
      wopts.block = tuner.settled() ? tuner.best() : tuner.propose();
      app.sweep(comm, wopts);
      // Feed the tuner the sweep's makespan (identical on all ranks after
      // the barrier).
      comm.barrier();
      const double vt = comm.vtime();
      if (!tuner.settled()) tuner.report(wopts.block, vt - last_vt);
      last_vt = vt;
    }
    const Real res = app.residual_norm(comm);
    if (comm.rank() == 0) {
      vt_total = comm.vtime();
      residual = res;
      tuned_b = tuner.best();
      tuning_waves = tuner.measurements();
    }
  });

  Table t("auto-tuned pipelined SOR (" + std::string(machine.name) + ", p=" +
          std::to_string(p) + ")");
  t.set_header({"quantity", "value"});
  t.add_row({"sweeps", std::to_string(iterations)});
  t.add_row({"final residual", fmt(residual, 4)});
  t.add_row({"tuned block size", std::to_string(tuned_b)});
  t.add_row({"Eq(1) static block size",
             std::to_string(select_block_static(machine.costs, n - 2, p))});
  t.add_row({"sweeps spent tuning", std::to_string(tuning_waves)});
  t.add_row({"total virtual time", fmt(vt_total, 6)});
  t.print(std::cout);
  return 0;
}
