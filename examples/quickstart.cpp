// Quickstart: the wavepipe array language in five minutes.
//
// Reproduces the paper's Fig 3 semantics demonstration — the same statement
// with and without the prime operator — then compiles and runs the Tomcatv
// scan block of Fig 2(b), serially and pipelined on a 4-processor machine.
//
// Build and run:  ./build/examples/quickstart
#include <iostream>

#include "wavepipe.hh"

using namespace wavepipe;

namespace {

void fig3_semantics() {
  std::cout << "--- Fig 3: the prime operator ---\n\n";
  const Coord n = 5;
  const Region<2> all({{1, 1}}, {{n, n}});
  const Region<2> reg({{2, 1}}, {{n, n}});  // [2..n, 1..n]

  // (a) a := 2 * a@north — ordinary array semantics: every element reads
  // the OLD value of its northern neighbour.
  DenseArray<Real, 2> a("a", all);
  a.fill(1.0);
  auto plan_a = scan(reg, a <<= 2.0 * at(a, kNorth)).compile();
  std::cout << "unprimed plan: " << plan_a.describe();
  run_serial(plan_a);
  print_matrix(std::cout, a, 6, 3);

  // (d) a := 2 * a'@north — the prime operator: each row doubles the NEW
  // value written one row above, creating a north-to-south wavefront.
  DenseArray<Real, 2> b("a'", all);
  b.fill(1.0);
  auto plan_b = scan(reg, b <<= 2.0 * prime(b, kNorth)).compile();
  std::cout << "\nprimed plan: " << plan_b.describe();
  run_serial(plan_b);
  print_matrix(std::cout, b, 6, 3);
}

void legality_examples() {
  std::cout << "\n--- The paper's legality examples ---\n\n";
  struct Case {
    const char* label;
    std::vector<Direction<2>> dirs;
  };
  const Case cases[] = {
      {"Example 1: d1=d2=(-1,0)", {{{-1, 0}}, {{-1, 0}}}},
      {"Example 2: d1=(-1,0), d2=(0,-1)", {{{-1, 0}}, {{0, -1}}}},
      {"Example 3: d1=(-1,0), d2=(1,1)", {{{-1, 0}}, {{1, 1}}}},
      {"Example 4: d1=(0,-1), d2=(0,1)", {{{0, -1}}, {{0, 1}}}},
  };
  for (const auto& c : cases) {
    const auto check = check_wavefront<2>(c.dirs);
    std::cout << c.label << ": WSV " << to_string(check.wsv) << " -> "
              << (check.legal ? "legal" : "ILLEGAL (" + check.reason + ")");
    if (check.legal && check.analysis.wavefront_dim)
      std::cout << ", wavefront along dim " << *check.analysis.wavefront_dim;
    std::cout << "\n";
  }
}

void tomcatv_block() {
  std::cout << "\n--- Fig 2(b): the Tomcatv scan block, serial and "
               "pipelined ---\n\n";
  const Coord n = 64;
  const Region<2> global({{1, 1}}, {{n, n}});
  const Region<2> reg({{2, 2}}, {{n - 1, n - 2}});  // [2..n-1, 2..n-2]

  // Serial reference on one processor.
  DenseArray<Real, 2> aa("aa", global), dd("dd", global), d("d", global),
      r("r", global), rx("rx", global), ry("ry", global);
  auto init_all = [&](auto& set) {
    set(aa, -1.0);
    set(dd, 4.0);
    set(d, 0.0);
    set(r, 0.0);
    set(rx, 1.0);
    set(ry, 2.0);
  };
  auto fill_const = [](DenseArray<Real, 2>& arr, Real v) { arr.fill(v); };
  init_all(fill_const);

  auto plan = scan(reg,
                   r <<= aa * prime(d, kNorth),
                   d <<= 1.0 / (dd - at(aa, kNorth) * r),
                   rx <<= rx - prime(rx, kNorth) * r,
                   ry <<= ry - prime(ry, kNorth) * r)
                  .compile();
  std::cout << plan.describe();
  run_serial(plan);
  const Real serial_sum = [&] {
    Real s = 0;
    for_each(reg, [&](const Idx<2>& i) { s += rx(i); });
    return s;
  }();
  std::cout << "serial   sum(rx) = " << serial_sum << "\n";

  // The same block on 4 processors with pipelining, block size 8.
  const int p = 4;
  const ProcGrid<2> grid = ProcGrid<2>::along_dim(p, 0);
  auto result = Machine::run(p, CostModel{}, [&](Communicator& comm) {
    const Layout<2> layout(global, grid, Idx<2>{{1, 1}});
    DistArray<Real, 2> daa("aa", layout, comm.rank());
    DistArray<Real, 2> ddd("dd", layout, comm.rank());
    DistArray<Real, 2> dd2("d", layout, comm.rank());
    DistArray<Real, 2> dr("r", layout, comm.rank());
    DistArray<Real, 2> drx("rx", layout, comm.rank());
    DistArray<Real, 2> dry("ry", layout, comm.rank());
    daa.local().fill(-1.0);
    ddd.local().fill(4.0);
    dd2.local().fill(0.0);
    dr.local().fill(0.0);
    drx.local().fill(1.0);
    dry.local().fill(2.0);

    auto dplan = scan(reg,
                      dr.local() <<= daa.local() * prime(dd2.local(), kNorth),
                      dd2.local() <<= 1.0 / (ddd.local() -
                                             at(daa.local(), kNorth) *
                                                 dr.local()),
                      drx.local() <<= drx.local() -
                                      prime(drx.local(), kNorth) * dr.local(),
                      dry.local() <<= dry.local() -
                                      prime(dry.local(), kNorth) * dr.local())
                     .compile();
    const auto report = run_pipelined(dplan, layout, comm, /*block=*/8);
    const Real local_sum = [&] {
      Real s = 0;
      for_each(reg.intersect(layout.owned(comm.rank())),
               [&](const Idx<2>& i) { s += drx(i); });
      return s;
    }();
    const Real total = comm.allreduce_sum(local_sum);
    if (comm.rank() == 0) {
      std::cout << "pipelined sum(rx) = " << total << "   ("
                << report.tiles << " tiles of " << report.block
                << " along dim " << report.tile_dim << " per rank)\n";
    }
  });
  std::cout << "machine: " << p << " ranks, "
            << result.total.messages_sent << " messages total\n";
}

}  // namespace

int main() {
  fig3_semantics();
  legality_examples();
  tomcatv_block();
  std::cout << "\nquickstart done.\n";
  return 0;
}
