// Smith-Waterman demo: pipelined dynamic programming on a 2D processor
// grid. Aligns two random sequences over a pr x pc mesh (both the row and
// the column dimension distributed — a 2D wavefront frontier with north
// and west inflow faces per rank), validates against the quadratic
// reference, and prints each rank's virtual-time phase breakdown.
//
//   ./build/examples/smith_waterman_demo [--la=200] [--lb=180] [--p=4]
//                                        [--block=16] [--block_w=16]
//
// With --band=K the demo switches to the genome-scale streaming variant:
// banded alignment of two length-n sequences (cells |i-j| <= K) holding
// only O(band + block) elements per rank, any n.
//
//   ./build/examples/smith_waterman_demo --band=64 [--n=100000] [--p=4]
#include <iostream>
#include <vector>

#include "apps/smith_waterman.hh"
#include "model/machines.hh"
#include "support/options.hh"
#include "support/table.hh"

using namespace wavepipe;

namespace {

/// pr x pc mesh when p factors into two non-trivial axes; a 1D chain
/// (with a note) when it does not (prime p, or p == 1).
ProcGrid<2> choose_grid(int p) {
  try {
    return ProcGrid<2>::factored(p, {0, 1});
  } catch (const ConfigError&) {
    std::cout << "(p=" << p << " has no 2D factorization; using a " << p
              << "x1 chain)\n";
    return ProcGrid<2>::along_dim(p, 0);
  }
}

void add_phase_rows(Table& t, const RunResult& res) {
  for (std::size_t r = 0; r < res.phases.size(); ++r) {
    const PhaseBreakdown& ph = res.phases[r];
    t.add_row({"rank " + std::to_string(r) + " comp/comm/wait",
               fmt(ph.t_comp, 6) + " / " + fmt(ph.t_comm, 6) + " / " +
                   fmt(ph.t_wait, 6)});
  }
}

int run_banded(const Options& opts, int p) {
  BandedSwConfig cfg;
  cfg.n = opts.get_int("n", 100000);
  cfg.band = opts.get_int("band", 64);
  cfg.block = opts.get_int("block", 256);
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));

  std::cout << "banded Smith-Waterman, n=" << cfg.n << " band=" << cfg.band
            << " (cells |i-j| <= band, O(band) memory per rank)\n\n";

  const MachinePreset machine = t3e_like();
  const ProcGrid<2> grid = choose_grid(p);

  double score = 0.0;
  std::vector<std::size_t> resident(static_cast<std::size_t>(p), 0);
  const auto res = Machine::run(p, machine.costs, [&](Communicator& comm) {
    BandedSmithWaterman app(cfg, grid, comm.rank());
    const Real s = app.fill(comm);
    resident[static_cast<std::size_t>(comm.rank())] = app.resident_elements();
    if (comm.rank() == 0) score = s;
  });

  const Real expected =
      BandedSmithWaterman(cfg, grid, 0).reference_best_score();
  std::size_t max_resident = 0;
  for (const std::size_t r : resident) max_resident = std::max(max_resident, r);

  Table t("streaming banded fill (" + std::string(machine.name) + ", grid " +
          grid.describe() + ", block=" + std::to_string(cfg.block) + ")");
  t.set_header({"quantity", "value"});
  t.add_row({"best local alignment score", fmt(score, 6)});
  t.add_row({"reference banded DP score", fmt(expected, 6)});
  t.add_row({"virtual time", fmt(res.vtime_max, 6)});
  t.add_row({"messages", std::to_string(res.total.messages_sent)});
  t.add_row({"max resident elements/rank", std::to_string(max_resident)});
  t.add_row({"dense matrix would need",
             std::to_string(cfg.n * cfg.n / static_cast<Coord>(p)) +
                 " elements/rank"});
  add_phase_rows(t, res);
  t.add_note(score == expected ? "scores agree (bitwise)" : "MISMATCH!");
  t.print(std::cout);
  return score == expected ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const int p = static_cast<int>(opts.get_int("p", 4));
  if (opts.get_int("band", 0) > 0) return run_banded(opts, p);

  SmithWatermanConfig cfg;
  cfg.la = opts.get_int("la", 200);
  cfg.lb = opts.get_int("lb", 180);
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));

  std::cout << "Smith-Waterman local alignment, |a|=" << cfg.la
            << " |b|=" << cfg.lb << "\n\n";

  // Show the first few symbols and the compiled wavefront.
  {
    SmithWaterman app(cfg, ProcGrid<2>({1, 1}), 0);
    std::cout << "a[1..12]: ";
    for (Coord i = 1; i <= std::min<Coord>(12, cfg.la); ++i)
      std::cout << "ACGT"[app.symbol_a(i) % 4];
    std::cout << "\nb[1..12]: ";
    for (Coord j = 1; j <= std::min<Coord>(12, cfg.lb); ++j)
      std::cout << "ACGT"[app.symbol_b(j) % 4];
    std::cout << "\n\nthe recurrence compiles to:\n";
    auto check = check_wavefront<2>({kNorthWest, kNorth, kWest});
    std::cout << "  WSV " << to_string(check.wsv)
              << " -> wavefront along dim " << *check.analysis.wavefront_dim
              << "; both dims WSV '-', so a 2D mesh pipelines tiles along "
                 "both axes\n\n";
  }

  // Distributed fill over the mesh, and validation.
  const MachinePreset machine = t3e_like();
  const ProcGrid<2> grid = choose_grid(p);
  WaveOptions wopts;
  wopts.block = opts.get_int("block", 16);
  wopts.block_w = opts.get_int("block_w", 16);

  double score = 0.0;
  int axes = 0;
  const auto res = Machine::run(p, machine.costs, [&](Communicator& comm) {
    SmithWaterman app(cfg, grid, comm.rank());
    app.init();
    const auto rep = app.fill(comm, wopts);
    const Real s = app.best_score(comm);
    if (comm.rank() == 0) {
      score = s;
      axes = rep.axes;
    }
  });

  SmithWaterman ref(cfg, ProcGrid<2>({1, 1}), 0);
  const Real expected = ref.reference_best_score();

  Table t("pipelined DP fill (" + std::string(machine.name) + ", grid " +
          grid.describe() + ", block=" + std::to_string(wopts.block) +
          ", block_w=" + std::to_string(wopts.block_w) + ")");
  t.set_header({"quantity", "value"});
  t.add_row({"best local alignment score", fmt(score, 6)});
  t.add_row({"reference DP score", fmt(expected, 6)});
  t.add_row({"frontier axes", std::to_string(axes)});
  t.add_row({"virtual time", fmt(res.vtime_max, 6)});
  t.add_row({"messages", std::to_string(res.total.messages_sent)});
  add_phase_rows(t, res);
  t.add_note(score == expected ? "scores agree" : "MISMATCH!");
  t.print(std::cout);
  return score == expected ? 0 : 1;
}
