// Smith-Waterman demo: pipelined dynamic programming. Aligns two random
// sequences, validates against the quadratic reference, and shows the
// wavefront plan the diagonal recurrence compiles to.
//
//   ./build/examples/smith_waterman_demo [--la=200] [--lb=180] [--p=4]
#include <iostream>

#include "apps/smith_waterman.hh"
#include "model/machines.hh"
#include "support/options.hh"
#include "support/table.hh"

using namespace wavepipe;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  SmithWatermanConfig cfg;
  cfg.la = opts.get_int("la", 200);
  cfg.lb = opts.get_int("lb", 180);
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const int p = static_cast<int>(opts.get_int("p", 4));

  std::cout << "Smith-Waterman local alignment, |a|=" << cfg.la
            << " |b|=" << cfg.lb << "\n\n";

  // Show the first few symbols and the compiled wavefront.
  {
    SmithWaterman app(cfg, ProcGrid<2>({1, 1}), 0);
    std::cout << "a[1..12]: ";
    for (Coord i = 1; i <= std::min<Coord>(12, cfg.la); ++i)
      std::cout << "ACGT"[app.symbol_a(i) % 4];
    std::cout << "\nb[1..12]: ";
    for (Coord j = 1; j <= std::min<Coord>(12, cfg.lb); ++j)
      std::cout << "ACGT"[app.symbol_b(j) % 4];
    std::cout << "\n\nthe recurrence compiles to:\n";
    auto check = check_wavefront<2>({kNorthWest, kNorth, kWest});
    std::cout << "  WSV " << to_string(check.wsv)
              << " -> wavefront along dim "
              << *check.analysis.wavefront_dim
              << ", second dimension serialized, pipelined in blocks\n\n";
  }

  // Distributed fill and validation.
  const MachinePreset machine = t3e_like();
  const ProcGrid<2> grid = ProcGrid<2>::along_dim(p, 0);
  const Coord block = 16;

  double score = 0.0;
  auto res = Machine::run(p, machine.costs, [&](Communicator& comm) {
    WaveOptions wopts;
    wopts.block = block;
    const Real s = smith_waterman_spmd(comm, cfg, grid, wopts);
    if (comm.rank() == 0) score = s;
  });

  SmithWaterman ref(cfg, ProcGrid<2>({1, 1}), 0);
  const Real expected = ref.reference_best_score();

  Table t("pipelined DP fill (" + std::string(machine.name) + ", p=" +
          std::to_string(p) + ", block=" + std::to_string(block) + ")");
  t.set_header({"quantity", "value"});
  t.add_row({"best local alignment score", fmt(score, 6)});
  t.add_row({"reference DP score", fmt(expected, 6)});
  t.add_row({"virtual time", fmt(res.vtime_max, 6)});
  t.add_row({"messages", std::to_string(res.total.messages_sent)});
  t.add_note(score == expected ? "scores agree" : "MISMATCH!");
  t.print(std::cout);
  return score == expected ? 0 : 1;
}
