// SWEEP3D demo: discrete-ordinates transport sweeps over all 8 octants,
// showing the per-octant wavefront plans and the pipelining win.
//
//   ./build/examples/sweep3d_demo [--n=16] [--p=4] [--block=4]
#include <iostream>

#include "apps/sweep3d.hh"
#include "model/machines.hh"
#include "support/options.hh"
#include "support/table.hh"

using namespace wavepipe;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const Coord n = opts.get_int("n", 16);
  const int p = static_cast<int>(opts.get_int("p", 4));
  const Coord block = opts.get_int("block", 4);

  std::cout << "SWEEP3D-like Sn transport sweep, " << n << "^3 cells\n\n";

  // Show the wavefront structure of two representative octants.
  {
    Sweep3dConfig cfg;
    cfg.n = n;
    Sweep3d app(cfg, ProcGrid<3>({1, 1, 1}), 0);
    Machine::run(1, {}, [&](Communicator& comm) {
      std::cout << "octant 0 (+++ travel): sweeping...\n";
      app.sweep_octant(0, comm);
      std::cout << "octant 7 (--- travel): sweeping...\n";
      app.sweep_octant(7, comm);
      app.accumulate(comm);
      std::cout << "flux after 2 octants: " << fmt(app.total_flux(comm), 6)
                << "\n\n";
    });
  }

  // Full source iteration under the T3E model, naive vs pipelined.
  const MachinePreset machine = t3e_like();
  const ProcGrid<3> grid = ProcGrid<3>::along_dim(p, 0);
  Sweep3dConfig cfg;
  cfg.n = n;

  auto run_with = [&](Coord b) {
    double flux = 0.0;
    auto res = Machine::run(p, machine.costs, [&](Communicator& comm) {
      WaveOptions wopts;
      wopts.block = b;
      const Real f = sweep3d_spmd(comm, cfg, grid, wopts);
      if (comm.rank() == 0) flux = f;
    });
    return std::pair<double, double>(res.vtime_max, flux);
  };
  const auto [naive_t, naive_flux] = run_with(0);
  const auto [pipe_t, pipe_flux] = run_with(block);

  Table t("8-octant sweep (" + std::string(machine.name) + ", p=" +
          std::to_string(p) + ", block=" + std::to_string(block) + ")");
  t.set_header({"schedule", "virtual time", "total flux"});
  t.add_row({"naive", fmt(naive_t, 6), fmt(naive_flux, 8)});
  t.add_row({"pipelined", fmt(pipe_t, 6), fmt(pipe_flux, 8)});
  t.add_note("speedup: " + fmt_speedup(naive_t / pipe_t));
  t.print(std::cout);
  return 0;
}
